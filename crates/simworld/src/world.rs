//! The synchronous world stepper: advances actors at the sensor frequency,
//! produces sensor frames, and monitors safety (collisions, CVIP, traffic
//! rules, trajectory recording).

use crate::geometry::Vec2;
use crate::npc::{next_stopping_light, GapAhead, Npc, NpcBehavior};
use crate::scenario::Scenario;
use crate::sensors::{
    lidar_scan_into, render_camera_into, Image, ImuReading, RenderScene, SensorConfig, SensorFrame,
};
use crate::vehicle::{Controls, Vehicle, VehicleState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sensor/control frequency (Hz) — the paper's CARLA setup posts all
/// sensor data at 40 Hz in synchronous mode.
pub const TICK_HZ: f64 = 40.0;

/// Result of one world step.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WorldStatus {
    /// The scenario is still in progress.
    Running,
    /// The ego vehicle collided this step.
    Collision,
    /// The scenario duration elapsed.
    Finished,
}

/// One recorded trajectory sample.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TrajPoint {
    /// Simulation time (s).
    pub t: f64,
    /// Ego world position.
    pub pos: Vec2,
}

/// High-level route-planner outputs fed to the agent (the paper's
/// "destination-to-go" directive): path curvature ahead and a speed limit
/// that encodes traffic-light and curve handling.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct RouteHint {
    /// Track curvature ~8 m ahead (1/m, signed; positive = left).
    pub curvature: f32,
    /// Planner speed limit (m/s).
    pub speed_limit: f32,
    /// Ego lateral offset from the route centerline (m, positive = left),
    /// from GPS localization against the planned route.
    pub lateral_offset: f32,
    /// Ego heading error relative to the route tangent (rad, positive =
    /// pointing left of the route), from localization.
    pub heading_err: f32,
}

/// The simulated world: ego vehicle, NPCs, lights, and safety monitors.
#[derive(Clone, Debug)]
pub struct World {
    scenario: Scenario,
    ego: Vehicle,
    ego_s: f64,
    npcs: Vec<Npc>,
    t: f64,
    step_idx: u64,
    rng: StdRng,
    sensor_cfg: SensorConfig,
    trajectory: Vec<TrajPoint>,
    collision_t: Option<f64>,
    min_cvip: f64,
    red_light_violations: u32,
    /// Scratch for per-NPC gap lookahead in [`World::step`], reused every
    /// tick so the stepper allocates nothing in steady state.
    gaps_scratch: Vec<Option<GapAhead>>,
}

impl World {
    /// Instantiate a world for `scenario` with per-run noise seed `seed`.
    ///
    /// Different seeds model the run-to-run nondeterminism of the paper's
    /// stack (sensor noise, scheduling); identical seeds reproduce a run
    /// exactly.
    pub fn new(scenario: Scenario, sensor_cfg: SensorConfig, seed: u64) -> Self {
        let pose = scenario.track.pose_at(scenario.ego_start_s, 0.0);
        let ego = Vehicle::new(pose, scenario.ego_start_speed);
        let ego_s = scenario.ego_start_s;
        let npcs = scenario.npcs.clone();
        // One sample per tick plus the spawn point: reserving up front keeps
        // the per-tick trajectory push allocation-free.
        let mut trajectory = Vec::with_capacity((scenario.duration * TICK_HZ) as usize + 2);
        trajectory.push(TrajPoint { t: 0.0, pos: pose.pos });
        let gaps_scratch = Vec::with_capacity(npcs.len());
        World {
            scenario,
            ego,
            ego_s,
            npcs,
            t: 0.0,
            step_idx: 0,
            rng: StdRng::seed_from_u64(seed ^ 0xD1BE_5EAF),
            sensor_cfg,
            trajectory,
            collision_t: None,
            min_cvip: f64::INFINITY,
            red_light_violations: 0,
            gaps_scratch,
        }
    }

    /// Simulation time step (s).
    pub fn dt(&self) -> f64 {
        1.0 / TICK_HZ
    }

    /// Current simulation time (s).
    pub fn time(&self) -> f64 {
        self.t
    }

    /// The scenario being simulated.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Current ego kinematic state.
    pub fn ego_state(&self) -> &VehicleState {
        &self.ego.state
    }

    /// Ego arclength along the route.
    pub fn ego_s(&self) -> f64 {
        self.ego_s
    }

    /// Whether the scenario has ended (duration elapsed or collision).
    pub fn finished(&self) -> bool {
        self.t >= self.scenario.duration || self.collision_t.is_some()
    }

    /// Time of the ego collision, if one occurred.
    pub fn collision_time(&self) -> Option<f64> {
        self.collision_t
    }

    /// Minimum closest-vehicle-in-path distance observed so far (m).
    pub fn min_cvip(&self) -> f64 {
        self.min_cvip
    }

    /// Number of red lights crossed against a stop demand.
    pub fn red_light_violations(&self) -> u32 {
        self.red_light_violations
    }

    /// The recorded ego trajectory.
    pub fn trajectory(&self) -> &[TrajPoint] {
        &self.trajectory
    }

    /// Distance to the closest vehicle in the ego's path (bumper to
    /// bumper), if any NPC is ahead in the ego lane.
    pub fn cvip(&self) -> Option<f64> {
        let (ego_s, ego_lat) = (self.ego_s, self.ego_lateral());
        self.npcs
            .iter()
            .filter(|n| (n.lateral - ego_lat).abs() < 2.2 && n.s > ego_s)
            .map(|n| n.s - ego_s - (n.length + self.ego.params.length) / 2.0)
            .min_by(|a, b| a.partial_cmp(b).expect("finite distances"))
    }

    fn ego_lateral(&self) -> f64 {
        self.scenario.track.project_near(self.ego.state.pose.pos, self.ego_s, 25.0).1
    }

    /// High-level route-planner outputs for the current state.
    pub fn route_hint(&self) -> RouteHint {
        let track = &self.scenario.track;
        let look = self.ego_s + 8.0;
        let curvature = track.curvature_at(look);
        // Curve comfort limit: lateral acceleration ≤ 2 m/s².
        let curve_limit =
            if curvature.abs() > 1e-4 { (2.0 / curvature.abs()).sqrt() } else { f64::MAX };
        // Traffic-light handling: decelerate to stop ~4 m before the line.
        let light_limit = match next_stopping_light(self.ego_s, self.t, &self.scenario.lights, 45.0)
        {
            Some(d) => {
                let d_eff = (d - 4.0).max(0.0);
                (2.0 * 1.5 * d_eff).sqrt()
            }
            None => f64::MAX,
        };
        let limit = self.scenario.cruise_speed.min(curve_limit).min(light_limit);
        let mut heading_err = self.ego.state.pose.heading - track.heading_at(self.ego_s);
        while heading_err > std::f64::consts::PI {
            heading_err -= std::f64::consts::TAU;
        }
        while heading_err < -std::f64::consts::PI {
            heading_err += std::f64::consts::TAU;
        }
        RouteHint {
            curvature: curvature as f32,
            speed_limit: limit as f32,
            lateral_offset: self.ego_lateral() as f32,
            heading_err: heading_err as f32,
        }
    }

    /// Capture the sensor bundle for the current instant.
    ///
    /// Draws fresh per-frame noise from the run RNG, so consecutive frames
    /// are bit-diverse even for a stationary scene.
    pub fn sense(&mut self) -> SensorFrame {
        let mut frame = SensorFrame::empty();
        self.sense_into(&mut frame);
        frame
    }

    /// [`World::sense`] into a caller-owned frame, reusing its buffers.
    ///
    /// Draws the same RNG sequence and produces a bit-identical frame;
    /// after the first capture the steady state performs no heap
    /// allocation, which is what the `SimLoop` frame-buffer pool relies
    /// on for the campaign hot path.
    pub fn sense_into(&mut self, frame: &mut SensorFrame) {
        let frame_seed: u64 = self.rng.gen();
        let scene = RenderScene {
            track: &self.scenario.track,
            ego: self.ego.state.pose,
            ego_s: self.ego_s,
            npcs: &self.npcs,
            frame_seed,
        };
        frame.cameras.resize_with(3, || Image::new(0, 0));
        for (c, img) in frame.cameras.iter_mut().enumerate() {
            render_camera_into(&self.sensor_cfg, &scene, c, img);
        }
        if self.sensor_cfg.enable_lidar {
            lidar_scan_into(&self.sensor_cfg, &scene, frame.lidar.get_or_insert_with(Vec::new));
        } else {
            frame.lidar = None;
        }
        frame.gps = [
            (self.ego.state.pose.pos.x + self.gauss(self.sensor_cfg.gps_noise)) as f32,
            (self.ego.state.pose.pos.y + self.gauss(self.sensor_cfg.gps_noise)) as f32,
        ];
        frame.imu = ImuReading {
            accel: (self.ego.state.accel + self.gauss(self.sensor_cfg.imu_noise)) as f32,
            yaw_rate: (self.ego.state.yaw_rate + self.gauss(self.sensor_cfg.imu_noise)) as f32,
        };
        frame.speed =
            (self.ego.state.speed + self.gauss(self.sensor_cfg.speed_noise)).max(0.0) as f32;
        frame.t = self.t;
        frame.step = self.step_idx;
    }

    fn gauss(&mut self, sigma: f64) -> f64 {
        // Box–Muller transform.
        let u1: f64 = self.rng.gen_range(1e-12..1.0);
        let u2: f64 = self.rng.gen();
        sigma * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Advance the world by one tick under the ego `controls`.
    pub fn step(&mut self, controls: Controls) -> WorldStatus {
        if self.finished() {
            return if self.collision_t.is_some() {
                WorldStatus::Collision
            } else {
                WorldStatus::Finished
            };
        }
        let dt = self.dt();

        // NPCs first (scripted actors are independent of the ego). Gap
        // lookahead uses pre-step state for every NPC, so it is computed
        // for all of them before any moves; the scratch vector is a World
        // member reused across ticks (zero steady-state allocation).
        let mut gaps = std::mem::take(&mut self.gaps_scratch);
        gaps.clear();
        gaps.extend((0..self.npcs.len()).map(|i| {
            matches!(self.npcs[i].behavior, NpcBehavior::Idm(_)).then(|| self.gap_ahead_of(i))
        }));
        for (npc, gap) in self.npcs.iter_mut().zip(gaps.iter().copied()) {
            npc.step(self.t, dt, gap);
        }
        self.gaps_scratch = gaps;

        // Ego physics.
        let prev_s = self.ego_s;
        self.ego.step(controls, dt);
        self.ego_s = self.scenario.track.project_near(self.ego.state.pose.pos, self.ego_s, 25.0).0;
        self.t += dt;
        self.step_idx += 1;
        self.trajectory.push(TrajPoint { t: self.t, pos: self.ego.state.pose.pos });

        // Safety monitors.
        if let Some(cvip) = self.cvip() {
            if cvip < self.min_cvip {
                self.min_cvip = cvip;
            }
        }
        for light in &self.scenario.lights {
            if prev_s < light.s && self.ego_s >= light.s && light.demands_stop(self.t) {
                self.red_light_violations += 1;
            }
        }
        let ego_fp = self.ego.footprint();
        let track = &self.scenario.track;
        if self.npcs.iter().any(|n| ego_fp.intersects(&n.footprint(track))) {
            self.collision_t = Some(self.t);
            return WorldStatus::Collision;
        }
        if self.t >= self.scenario.duration {
            WorldStatus::Finished
        } else {
            WorldStatus::Running
        }
    }

    /// Nearest obstacle ahead of NPC `i` in its lane: other NPCs, the ego,
    /// or a red light.
    fn gap_ahead_of(&self, i: usize) -> GapAhead {
        let me = &self.npcs[i];
        let mut gap = f64::INFINITY;
        let mut lead_speed = 0.0;
        for (j, other) in self.npcs.iter().enumerate() {
            if j == i || (other.lateral - me.lateral).abs() > 2.0 || other.s <= me.s {
                continue;
            }
            let g = other.s - me.s - (other.length + me.length) / 2.0;
            if g < gap {
                gap = g;
                lead_speed = other.speed;
            }
        }
        // The ego vehicle as an obstacle.
        let ego_lat = self.ego_lateral();
        if (ego_lat - me.lateral).abs() < 2.0 && self.ego_s > me.s {
            let g = self.ego_s - me.s - (self.ego.params.length + me.length) / 2.0;
            if g < gap {
                gap = g;
                lead_speed = self.ego.state.speed;
            }
        }
        // Red lights act as standing obstacles at the stop line.
        if let Some(d) = next_stopping_light(me.s, self.t, &self.scenario.lights, 60.0) {
            let g = d - 2.0;
            if g < gap {
                gap = g;
                lead_speed = 0.0;
            }
        }
        GapAhead { gap, lead_speed }
    }

    /// Positions of all NPCs (for analysis / semantic-consistency studies).
    pub fn npcs(&self) -> &[Npc] {
        &self.npcs
    }

    /// The sensor configuration in use.
    pub fn sensor_config(&self) -> &SensorConfig {
        &self.sensor_cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{front_accident, ghost_cut_in, lead_slowdown, long_route};

    fn cruise_controls(world: &World, target: f64) -> Controls {
        // A simple proportional controller used only by these tests.
        let err = target - world.ego_state().speed;
        Controls::clamped(0.4 * err, -0.8 * err, 0.0)
    }

    #[test]
    fn world_steps_and_records_trajectory() {
        let mut w = World::new(lead_slowdown(), SensorConfig::default(), 1);
        for _ in 0..40 {
            w.step(Controls::default());
        }
        assert_eq!(w.trajectory().len(), 41);
        assert!((w.time() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coasting_into_braking_lead_causes_collision() {
        let mut w = World::new(lead_slowdown(), SensorConfig::default(), 2);
        let mut status = WorldStatus::Running;
        while !w.finished() {
            let c = cruise_controls(&w, 8.0);
            status = w.step(Controls { brake: 0.0, ..c });
            if status == WorldStatus::Collision {
                break;
            }
        }
        assert_eq!(status, WorldStatus::Collision, "blind cruising must rear-end the lead");
        assert!(w.collision_time().is_some());
    }

    #[test]
    fn braking_ego_avoids_lead_slowdown_collision() {
        let mut w = World::new(lead_slowdown(), SensorConfig::default(), 3);
        while !w.finished() {
            // Perfect-knowledge policy: brake when CVIP shrinks.
            let cvip = w.cvip().unwrap_or(f64::INFINITY);
            let c = if cvip < 18.0 { Controls::full_brake() } else { cruise_controls(&w, 8.0) };
            w.step(c);
        }
        assert!(w.collision_time().is_none(), "braking policy should be safe");
        assert!(w.min_cvip() > 0.3, "min CVIP {}", w.min_cvip());
    }

    #[test]
    fn cvip_tracks_lead_vehicle() {
        let w = World::new(lead_slowdown(), SensorConfig::default(), 4);
        let cvip = w.cvip().expect("lead is in path");
        // 25 m center-to-center minus half-lengths (4.6 and 4.4 m).
        assert!((cvip - (25.0 - 4.5)).abs() < 0.5, "cvip {cvip}");
    }

    #[test]
    fn ghost_cut_in_reduces_cvip_suddenly() {
        let mut w = World::new(ghost_cut_in(), SensorConfig::default(), 5);
        // Before the cut-in, no vehicle is in path.
        assert!(w.cvip().is_none());
        while w.time() < 10.0 {
            let c = cruise_controls(&w, 8.0);
            w.step(c);
        }
        let cvip = w.cvip().expect("cut-in vehicle now in path");
        assert!(cvip < 15.0, "cut-in is close: {cvip}");
    }

    #[test]
    fn front_accident_leaves_stopped_vehicles_in_path() {
        let mut w = World::new(front_accident(), SensorConfig::default(), 6);
        while w.time() < 14.0 && !w.finished() {
            // Follow at a safe distance using ground truth.
            let cvip = w.cvip().unwrap_or(f64::INFINITY);
            let c = if cvip < 15.0 { Controls::full_brake() } else { cruise_controls(&w, 8.0) };
            w.step(c);
        }
        // Both NPCs should be (nearly) stopped after the scripted crash.
        assert!(w.npcs().iter().all(|n| n.speed < 0.5), "npcs stopped after crash");
    }

    #[test]
    fn sense_produces_three_cameras_and_noisy_signals() {
        let mut w = World::new(lead_slowdown(), SensorConfig::default(), 7);
        let f1 = w.sense();
        let f2 = w.sense();
        assert_eq!(f1.cameras.len(), 3);
        assert_eq!(f1.cameras[1].width(), 64);
        // Same world state, different noise draw → different frames.
        assert_ne!(f1.cameras[1], f2.cameras[1]);
        assert_ne!(f1.gps, f2.gps);
        assert!(f1.speed > 6.0 && f1.speed < 10.0);
        assert!(f1.lidar.is_none());
    }

    #[test]
    fn sense_with_lidar_enabled() {
        let cfg = SensorConfig { enable_lidar: true, ..Default::default() };
        let mut w = World::new(lead_slowdown(), cfg, 8);
        let f = w.sense();
        assert_eq!(f.lidar.expect("lidar enabled").len(), cfg.lidar_rays);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = |seed| {
            let mut w = World::new(lead_slowdown(), SensorConfig::default(), seed);
            let mut frames = Vec::new();
            for _ in 0..10 {
                frames.push(w.sense());
                w.step(Controls { throttle: 0.4, ..Default::default() });
            }
            (frames, *w.ego_state())
        };
        let (fa, sa) = run(42);
        let (fb, sb) = run(42);
        let (fc, _) = run(43);
        assert_eq!(fa, fb);
        assert_eq!(sa, sb);
        assert_ne!(fa, fc, "different seeds produce different sensor noise");
    }

    #[test]
    fn route_hint_slows_for_red_lights() {
        let mut sc = long_route(0, 120.0);
        // Force a light right ahead that is always red.
        sc.lights = vec![crate::track::TrafficLight {
            s: sc.ego_start_s + 20.0,
            green: 0.0,
            yellow: 0.0,
            red: 1000.0,
            offset: 0.0,
        }];
        let w = World::new(sc, SensorConfig::default(), 9);
        let hint = w.route_hint();
        assert!(
            hint.speed_limit < w.scenario().cruise_speed as f32,
            "limit {} should drop below cruise",
            hint.speed_limit
        );
    }

    #[test]
    fn red_light_crossing_is_flagged() {
        let mut sc = long_route(0, 60.0);
        sc.lights = vec![crate::track::TrafficLight {
            s: sc.ego_start_s + 8.0,
            green: 0.0,
            yellow: 0.0,
            red: 1000.0,
            offset: 0.0,
        }];
        let mut w = World::new(sc, SensorConfig::default(), 10);
        for _ in 0..200 {
            w.step(Controls { throttle: 0.6, ..Default::default() });
        }
        assert_eq!(w.red_light_violations(), 1);
    }

    #[test]
    fn finished_world_refuses_to_advance() {
        let mut sc = lead_slowdown();
        sc.duration = 0.05;
        let mut w = World::new(sc, SensorConfig::default(), 11);
        w.step(Controls::default());
        w.step(Controls::default());
        assert!(w.finished());
        let t = w.time();
        assert_eq!(w.step(Controls::default()), WorldStatus::Finished);
        assert_eq!(w.time(), t, "time frozen after finish");
    }
}
