//! Ego-vehicle dynamics: a kinematic bicycle model driven by
//! throttle/brake/steer actuation commands.

use crate::geometry::{Obb, Pose, Vec2};

/// Actuation commands applied to a vehicle for one control period.
///
/// This is the paper's actuation-output tuple `u_t = (throttle, brake,
/// steer)`; the DiverseAV error detector compares these values between the
/// two agents.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct Controls {
    /// Throttle command in `[0, 1]`.
    pub throttle: f64,
    /// Brake command in `[0, 1]`.
    pub brake: f64,
    /// Steering command in `[-1, 1]` (positive = left).
    pub steer: f64,
}

impl Controls {
    /// Construct with each component clamped to its valid range.
    pub fn clamped(throttle: f64, brake: f64, steer: f64) -> Self {
        fn sane(x: f64) -> f64 {
            if x.is_finite() {
                x
            } else {
                0.0
            }
        }
        Controls {
            throttle: sane(throttle).clamp(0.0, 1.0),
            brake: sane(brake).clamp(0.0, 1.0),
            steer: sane(steer).clamp(-1.0, 1.0),
        }
    }

    /// A full-brake command (used by the fail-back path).
    pub fn full_brake() -> Self {
        Controls { throttle: 0.0, brake: 1.0, steer: 0.0 }
    }
}

/// Physical parameters of a vehicle.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct VehicleParams {
    /// Body length (m).
    pub length: f64,
    /// Body width (m).
    pub width: f64,
    /// Wheelbase (m).
    pub wheelbase: f64,
    /// Maximum acceleration at full throttle (m/s²).
    pub max_accel: f64,
    /// Maximum deceleration at full brake (m/s²).
    pub max_brake: f64,
    /// Maximum front-wheel steering angle (rad).
    pub max_steer: f64,
    /// Quadratic drag coefficient (1/m).
    pub drag: f64,
}

impl Default for VehicleParams {
    fn default() -> Self {
        VehicleParams {
            length: 4.6,
            width: 1.9,
            wheelbase: 2.8,
            max_accel: 3.5,
            max_brake: 8.0,
            max_steer: 35f64.to_radians(),
            drag: 0.004,
        }
    }
}

/// Kinematic state of the ego vehicle.
///
/// Besides pose and speed we track acceleration, yaw rate, and yaw
/// acceleration because the paper's error detector bins its thresholds by
/// the vehicle-state tuple ⟨v, a, ω, α⟩.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct VehicleState {
    /// Center pose.
    pub pose: Pose,
    /// Longitudinal speed (m/s, non-negative).
    pub speed: f64,
    /// Longitudinal acceleration over the last step (m/s²).
    pub accel: f64,
    /// Yaw rate over the last step (rad/s).
    pub yaw_rate: f64,
    /// Yaw acceleration over the last step (rad/s²).
    pub yaw_accel: f64,
}

/// A controllable vehicle: state + parameters.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Vehicle {
    /// Current kinematic state.
    pub state: VehicleState,
    /// Physical parameters.
    pub params: VehicleParams,
}

impl Vehicle {
    /// Create a vehicle at `pose` moving at `speed` with default parameters.
    pub fn new(pose: Pose, speed: f64) -> Self {
        Vehicle {
            state: VehicleState { pose, speed, ..Default::default() },
            params: VehicleParams::default(),
        }
    }

    /// Advance the vehicle by `dt` seconds under `controls`.
    ///
    /// Uses a kinematic bicycle model: longitudinal acceleration from
    /// throttle/brake minus quadratic drag, yaw rate `v/L·tan(δ)`.
    pub fn step(&mut self, controls: Controls, dt: f64) {
        let c = Controls::clamped(controls.throttle, controls.brake, controls.steer);
        let p = &self.params;
        let s = &mut self.state;

        let drive = c.throttle * p.max_accel;
        let brake = c.brake * p.max_brake;
        let drag = p.drag * s.speed * s.speed;
        let mut accel = drive - brake - drag;
        // Brakes cannot push the vehicle backwards.
        if s.speed + accel * dt < 0.0 {
            accel = -s.speed / dt;
        }
        let new_speed = (s.speed + accel * dt).max(0.0);

        let steer_angle = c.steer * p.max_steer;
        let new_yaw_rate =
            if new_speed > 1e-6 { new_speed / p.wheelbase * steer_angle.tan() } else { 0.0 };

        s.yaw_accel = (new_yaw_rate - s.yaw_rate) / dt;
        s.yaw_rate = new_yaw_rate;
        s.accel = accel;
        // Integrate with the mid-step heading for better curvature fidelity.
        let mid_heading = s.pose.heading + new_yaw_rate * dt * 0.5;
        let avg_speed = 0.5 * (s.speed + new_speed);
        s.pose.pos += Vec2::from_heading(mid_heading) * (avg_speed * dt);
        s.pose.heading += new_yaw_rate * dt;
        s.speed = new_speed;
    }

    /// The vehicle's footprint for collision detection.
    pub fn footprint(&self) -> Obb {
        Obb::new(self.state.pose, self.params.length, self.params.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_vehicle(speed: f64) -> Vehicle {
        Vehicle::new(Pose::new(Vec2::ZERO, 0.0), speed)
    }

    #[test]
    fn controls_clamp_ranges() {
        let c = Controls::clamped(2.0, -1.0, -3.0);
        assert_eq!(c, Controls { throttle: 1.0, brake: 0.0, steer: -1.0 });
    }

    #[test]
    fn controls_clamp_rejects_non_finite() {
        let c = Controls::clamped(f64::NAN, f64::INFINITY, f64::NEG_INFINITY);
        assert_eq!(c, Controls { throttle: 0.0, brake: 0.0, steer: 0.0 });
    }

    #[test]
    fn full_throttle_accelerates() {
        let mut v = straight_vehicle(0.0);
        for _ in 0..40 {
            v.step(Controls { throttle: 1.0, ..Default::default() }, 0.025);
        }
        assert!(v.state.speed > 3.0, "speed after 1 s of full throttle: {}", v.state.speed);
        assert!(v.state.pose.pos.x > 1.0);
        assert!(v.state.pose.pos.y.abs() < 1e-9, "no lateral drift when straight");
    }

    #[test]
    fn full_brake_stops_without_reversing() {
        let mut v = straight_vehicle(10.0);
        for _ in 0..400 {
            v.step(Controls::full_brake(), 0.025);
        }
        assert_eq!(v.state.speed, 0.0);
    }

    #[test]
    fn braking_never_reverses_within_one_step() {
        let mut v = straight_vehicle(0.1);
        v.step(Controls::full_brake(), 0.025);
        assert!(v.state.speed >= 0.0);
    }

    #[test]
    fn steering_turns_left() {
        let mut v = straight_vehicle(8.0);
        for _ in 0..40 {
            v.step(Controls { throttle: 0.3, steer: 0.5, ..Default::default() }, 0.025);
        }
        assert!(v.state.pose.heading > 0.05, "positive steer turns left (CCW)");
        assert!(v.state.pose.pos.y > 0.0);
        assert!(v.state.yaw_rate > 0.0);
    }

    #[test]
    fn stationary_vehicle_does_not_yaw() {
        let mut v = straight_vehicle(0.0);
        v.step(Controls { steer: 1.0, ..Default::default() }, 0.025);
        assert_eq!(v.state.yaw_rate, 0.0);
        assert_eq!(v.state.pose.heading, 0.0);
    }

    #[test]
    fn drag_limits_top_speed() {
        let mut v = straight_vehicle(0.0);
        for _ in 0..40_000 {
            v.step(Controls { throttle: 1.0, ..Default::default() }, 0.025);
        }
        let top = v.state.speed;
        let p = v.params;
        let expected = (p.max_accel / p.drag).sqrt();
        assert!((top - expected).abs() < 1.0, "top speed {top} vs expected {expected}");
    }

    #[test]
    fn accel_state_tracks_input() {
        let mut v = straight_vehicle(5.0);
        v.step(Controls { throttle: 1.0, ..Default::default() }, 0.025);
        assert!(v.state.accel > 3.0);
        v.step(Controls::full_brake(), 0.025);
        assert!(v.state.accel < -5.0);
    }

    #[test]
    fn footprint_matches_dimensions() {
        let v = straight_vehicle(0.0);
        let f = v.footprint();
        assert_eq!(f.half_len * 2.0, v.params.length);
        assert_eq!(f.half_wid * 2.0, v.params.width);
    }
}
