//! Route/track model: a polyline centerline with arclength
//! parameterization, lane geometry, and traffic lights.
//!
//! A [`Track`] is the centerline of the *ego lane*. The adjacent (passing)
//! lane lies at lateral offset `+LANE_WIDTH` (to the left). Long training
//! routes are generated as sequences of straights and arcs, standing in for
//! the CARLA Town01/03/06 routes of the paper's §IV-C.

use crate::geometry::{Pose, Vec2};

/// Lane width in meters (both lanes).
pub const LANE_WIDTH: f64 = 3.5;

/// A polyline track with cumulative arclength.
#[derive(Clone, Debug, PartialEq)]
pub struct Track {
    pts: Vec<Vec2>,
    cum: Vec<f64>,
}

impl Track {
    /// Build a track from a polyline.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are supplied.
    pub fn from_points(pts: Vec<Vec2>) -> Self {
        assert!(pts.len() >= 2, "a track needs at least two points");
        let mut cum = Vec::with_capacity(pts.len());
        let mut s = 0.0;
        cum.push(0.0);
        for w in pts.windows(2) {
            s += w[0].dist(w[1]);
            cum.push(s);
        }
        Track { pts, cum }
    }

    /// A straight track along +x starting at the origin.
    pub fn straight(length: f64) -> Self {
        let n = (length / 2.0).ceil() as usize + 1;
        let pts = (0..n).map(|i| Vec2::new(i as f64 * length / (n - 1) as f64, 0.0)).collect();
        Track::from_points(pts)
    }

    /// Total arclength (m).
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("track is nonempty")
    }

    /// Index of the segment containing arclength `s` (clamped).
    fn segment(&self, s: f64) -> usize {
        let s = s.clamp(0.0, self.length());
        match self.cum.binary_search_by(|c| c.partial_cmp(&s).expect("finite arclength")) {
            Ok(i) => i.min(self.pts.len() - 2),
            Err(i) => (i - 1).min(self.pts.len() - 2),
        }
    }

    /// Centerline point at arclength `s` (clamped to the track).
    pub fn pos_at(&self, s: f64) -> Vec2 {
        let i = self.segment(s);
        let seg_len = (self.cum[i + 1] - self.cum[i]).max(1e-12);
        let t = (s.clamp(0.0, self.length()) - self.cum[i]) / seg_len;
        self.pts[i].lerp(self.pts[i + 1], t)
    }

    /// Unit tangent direction at arclength `s`.
    pub fn dir_at(&self, s: f64) -> Vec2 {
        let i = self.segment(s);
        (self.pts[i + 1] - self.pts[i]).normalized()
    }

    /// Heading (radians) at arclength `s`.
    pub fn heading_at(&self, s: f64) -> f64 {
        let d = self.dir_at(s);
        d.y.atan2(d.x)
    }

    /// Signed curvature (1/m) at arclength `s`, estimated by finite
    /// differences of heading over a 4 m window.
    pub fn curvature_at(&self, s: f64) -> f64 {
        let h = 2.0;
        let a = self.heading_at((s - h).max(0.0));
        let b = self.heading_at((s + h).min(self.length()));
        let mut dh = b - a;
        while dh > std::f64::consts::PI {
            dh -= 2.0 * std::f64::consts::PI;
        }
        while dh < -std::f64::consts::PI {
            dh += 2.0 * std::f64::consts::PI;
        }
        dh / (2.0 * h)
    }

    /// World pose at arclength `s` with signed lateral offset `lateral`
    /// (positive = left of travel direction).
    pub fn pose_at(&self, s: f64, lateral: f64) -> Pose {
        let pos = self.pos_at(s) + self.dir_at(s).perp() * lateral;
        Pose::new(pos, self.heading_at(s))
    }

    /// Project a world point onto the track near a known arclength.
    ///
    /// Only segments within `±window` meters of `s_hint` are examined,
    /// making per-step ego tracking O(window) instead of O(track length).
    pub fn project_near(&self, p: Vec2, s_hint: f64, window: f64) -> (f64, f64) {
        let lo = self.segment((s_hint - window).max(0.0));
        let hi = self.segment((s_hint + window).min(self.length()));
        self.project_range(p, lo, hi + 1)
    }

    /// Project a world point onto the track: returns `(s, lateral)`.
    ///
    /// Performs an exact projection per segment; cost is linear in the
    /// number of polyline points, which is fine at simulator scale.
    pub fn project(&self, p: Vec2) -> (f64, f64) {
        self.project_range(p, 0, self.pts.len() - 1)
    }

    fn project_range(&self, p: Vec2, lo: usize, hi: usize) -> (f64, f64) {
        let mut best = (0.0, 0.0, f64::INFINITY);
        for i in lo..hi.min(self.pts.len() - 1).max(lo + 1) {
            let a = self.pts[i];
            let b = self.pts[i + 1];
            let ab = b - a;
            let len2 = ab.dot(ab).max(1e-12);
            let t = ((p - a).dot(ab) / len2).clamp(0.0, 1.0);
            let q = a.lerp(b, t);
            let d2 = (p - q).dot(p - q);
            if d2 < best.2 {
                let s = self.cum[i] + t * (self.cum[i + 1] - self.cum[i]);
                // Signed lateral: component of (p - q) along the left normal.
                let lat = ab.normalized().perp().dot(p - q);
                best = (s, lat, d2);
            }
        }
        (best.0, best.1)
    }
}

/// Traffic-light phases.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LightPhase {
    /// Proceed.
    Green,
    /// Prepare to stop.
    Yellow,
    /// Stop at the stop line.
    Red,
}

/// A traffic light at a fixed arclength along a track.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TrafficLight {
    /// Stop-line position as arclength along the track (m).
    pub s: f64,
    /// Green duration (s).
    pub green: f64,
    /// Yellow duration (s).
    pub yellow: f64,
    /// Red duration (s).
    pub red: f64,
    /// Phase offset (s) into the cycle at t = 0.
    pub offset: f64,
}

impl TrafficLight {
    /// The light's phase at time `t`.
    pub fn phase(&self, t: f64) -> LightPhase {
        let cycle = self.green + self.yellow + self.red;
        let x = (t + self.offset).rem_euclid(cycle);
        if x < self.green {
            LightPhase::Green
        } else if x < self.green + self.yellow {
            LightPhase::Yellow
        } else {
            LightPhase::Red
        }
    }

    /// Whether a vehicle approaching the stop line should stop at time `t`.
    pub fn demands_stop(&self, t: f64) -> bool {
        !matches!(self.phase(t), LightPhase::Green)
    }
}

/// Deterministically generate a long training route: a mix of straights and
/// left/right turns, parameterized by a route seed (A/B/C analogues of the
/// paper's Route02/15/42).
pub fn generate_long_route(seed: u64, approx_length: f64) -> Track {
    // Simple xorshift so the route shape is stable across rand versions.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let mut pts = vec![Vec2::ZERO];
    let mut pos = Vec2::ZERO;
    let mut heading = 0.0f64;
    let mut built = 0.0;
    while built < approx_length {
        let r = next();
        let straight_len = 60.0 + (r % 120) as f64;
        let n = (straight_len / 2.0) as usize;
        for _ in 0..n {
            pos += Vec2::from_heading(heading) * 2.0;
            pts.push(pos);
        }
        built += straight_len;
        if built >= approx_length {
            break;
        }
        // A turn: ±90° or ±45°, radius 18–40 m.
        let r2 = next();
        let angle = match r2 % 4 {
            0 => std::f64::consts::FRAC_PI_2,
            1 => -std::f64::consts::FRAC_PI_2,
            2 => std::f64::consts::FRAC_PI_4,
            _ => -std::f64::consts::FRAC_PI_4,
        };
        let radius = 18.0 + (r2 / 7 % 22) as f64;
        let arc_len = radius * angle.abs();
        let steps = (arc_len / 1.5).ceil() as usize;
        for _ in 0..steps {
            heading += angle / steps as f64;
            pos += Vec2::from_heading(heading) * (arc_len / steps as f64);
            pts.push(pos);
        }
        built += arc_len;
    }
    Track::from_points(pts)
}

/// Place traffic lights every ~200 m along a route with staggered phases.
pub fn generate_lights(track: &Track, spacing: f64) -> Vec<TrafficLight> {
    let mut lights = Vec::new();
    let mut s = spacing;
    let mut k = 0;
    while s < track.length() - 30.0 {
        lights.push(TrafficLight {
            s,
            green: 9.0,
            yellow: 2.0,
            red: 6.0,
            offset: (k as f64) * 5.0,
        });
        s += spacing;
        k += 1;
    }
    lights
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_track_parameterization() {
        let t = Track::straight(100.0);
        assert!((t.length() - 100.0).abs() < 1e-9);
        assert!((t.pos_at(50.0) - Vec2::new(50.0, 0.0)).norm() < 1e-9);
        assert!((t.dir_at(10.0) - Vec2::new(1.0, 0.0)).norm() < 1e-9);
        assert_eq!(t.heading_at(0.0), 0.0);
        assert!(t.curvature_at(50.0).abs() < 1e-9);
    }

    #[test]
    fn pos_at_clamps() {
        let t = Track::straight(100.0);
        assert!((t.pos_at(-5.0) - Vec2::ZERO).norm() < 1e-9);
        assert!((t.pos_at(1e9) - Vec2::new(100.0, 0.0)).norm() < 1e-9);
    }

    #[test]
    fn project_recovers_s_and_lateral() {
        let t = Track::straight(100.0);
        let (s, lat) = t.project(Vec2::new(30.0, 2.0));
        assert!((s - 30.0).abs() < 1e-9);
        assert!((lat - 2.0).abs() < 1e-9, "left of +x travel is positive lateral");
        let (_, lat2) = t.project(Vec2::new(30.0, -1.5));
        assert!((lat2 + 1.5).abs() < 1e-9);
    }

    #[test]
    fn pose_at_offsets_left() {
        let t = Track::straight(50.0);
        let p = t.pose_at(10.0, LANE_WIDTH);
        assert!((p.pos - Vec2::new(10.0, LANE_WIDTH)).norm() < 1e-9);
    }

    #[test]
    fn project_roundtrips_pose_at() {
        let t = generate_long_route(7, 800.0);
        for &(s, lat) in &[(50.0, 0.0), (200.0, 1.0), (400.0, -1.5)] {
            let p = t.pose_at(s, lat);
            let (s2, lat2) = t.project(p.pos);
            assert!((s2 - s).abs() < 1.5, "s {s} → {s2}");
            assert!((lat2 - lat).abs() < 0.3, "lat {lat} → {lat2}");
        }
    }

    #[test]
    fn long_route_has_requested_scale_and_turns() {
        let t = generate_long_route(42, 2000.0);
        assert!(t.length() >= 2000.0 * 0.9);
        // At least one point with nontrivial curvature.
        let mut max_curv: f64 = 0.0;
        let mut s = 0.0;
        while s < t.length() {
            max_curv = max_curv.max(t.curvature_at(s).abs());
            s += 10.0;
        }
        assert!(max_curv > 0.01, "route should contain turns, max curvature {max_curv}");
    }

    #[test]
    fn long_route_is_deterministic() {
        let a = generate_long_route(5, 500.0);
        let b = generate_long_route(5, 500.0);
        assert_eq!(a, b);
        let c = generate_long_route(6, 500.0);
        assert_ne!(a, c, "different seeds give different routes");
    }

    #[test]
    fn project_near_matches_full_projection() {
        let t = generate_long_route(11, 1000.0);
        for &s in &[100.0, 400.0, 800.0] {
            let p = t.pose_at(s, 0.8).pos;
            let full = t.project(p);
            let near = t.project_near(p, s + 3.0, 30.0);
            assert!((full.0 - near.0).abs() < 1e-6);
            assert!((full.1 - near.1).abs() < 1e-6);
        }
    }

    #[test]
    fn traffic_light_cycles() {
        let l = TrafficLight { s: 0.0, green: 5.0, yellow: 1.0, red: 4.0, offset: 0.0 };
        assert_eq!(l.phase(0.0), LightPhase::Green);
        assert_eq!(l.phase(5.5), LightPhase::Yellow);
        assert_eq!(l.phase(7.0), LightPhase::Red);
        assert_eq!(l.phase(10.0), LightPhase::Green, "cycle wraps");
        assert!(!l.demands_stop(1.0));
        assert!(l.demands_stop(8.0));
    }

    #[test]
    fn generated_lights_are_spaced() {
        let t = Track::straight(1000.0);
        let lights = generate_lights(&t, 200.0);
        assert!(!lights.is_empty());
        for w in lights.windows(2) {
            assert!((w[1].s - w[0].s - 200.0).abs() < 1e-9);
        }
        assert!(lights.iter().all(|l| l.s < t.length()));
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn single_point_track_panics() {
        let _ = Track::from_points(vec![Vec2::ZERO]);
    }
}
