//! Sensor models: a software camera rasterizer, GPS, IMU, speedometer, and
//! LiDAR.
//!
//! The rasterizer is the heart of the reproduction's *temporal data
//! diversity* property (§V-A of the paper): consecutive frames must be
//! semantically near-identical (objects shift by a few pixels) while
//! differing substantially at the bit level (the paper measures a median of
//! 5–9 of 24 bits per pixel between consecutive frames). Two mechanisms
//! provide this here, mirroring reality:
//!
//! 1. **World-anchored texture** — road, grass, and vehicle surfaces carry
//!    a deterministic texture hashed from world coordinates, so ego motion
//!    shifts the pattern across pixels exactly as real texture parallax
//!    does.
//! 2. **Per-frame sensor noise** — every pixel channel receives a small
//!    deterministic pseudo-noise term keyed by a per-frame seed, standing
//!    in for shot/read noise of a real imager.

use crate::geometry::{Pose, Vec2};
use crate::npc::Npc;
use crate::track::{Track, LANE_WIDTH};
use std::cell::RefCell;

/// Per-thread row buffers for [`render_camera_into`]. The rasterizer
/// stages raw noise hashes (`4 * w` words, channel 3 is padding), the
/// per-channel pixel noise derived from them, and unquantized channel
/// values (`3 * w`) as flat rows, so the noise hashing, the hash→amplitude
/// conversion, and the final quantize are stride-1 loops the
/// autovectorizer runs wide.
#[derive(Default)]
struct RenderScratch {
    hashes: Vec<u64>,
    noise: Vec<f64>,
    vals: Vec<f64>,
}

thread_local! {
    /// Scratch reused across renders and scans on this thread: the
    /// rasterizer row buffers and the flattened NPC footprint segments of
    /// one LiDAR scan. Both retain capacity between frames, so the
    /// campaign hot path stays allocation-free in steady state.
    static RENDER_SCRATCH: RefCell<RenderScratch> = const {
        RefCell::new(RenderScratch { hashes: Vec::new(), noise: Vec::new(), vals: Vec::new() })
    };
    static SEGMENTS: RefCell<Vec<(Vec2, Vec2)>> = const { RefCell::new(Vec::new()) };
}

/// An 8-bit RGB image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Image {
    w: usize,
    h: usize,
    data: Vec<u8>,
}

impl Image {
    /// Create a black image.
    pub fn new(w: usize, h: usize) -> Self {
        Image { w, h, data: vec![0; w * h * 3] }
    }

    /// Resize to `w × h` and blacken, reusing the existing allocation.
    ///
    /// After the first frame at a given resolution this performs no heap
    /// allocation — the buffer-pool primitive behind
    /// [`render_camera_into`].
    pub fn reset(&mut self, w: usize, h: usize) {
        self.w = w;
        self.h = h;
        self.data.clear();
        self.data.resize(w * h * 3, 0);
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Raw interleaved RGB bytes (row-major).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw interleaved RGB bytes (row-major) — the in-place
    /// corruption surface used by the sensor-fault injector.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Read pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn pixel(&self, x: usize, y: usize) -> [u8; 3] {
        let i = (y * self.w + x) * 3;
        [self.data[i], self.data[i + 1], self.data[i + 2]]
    }

    /// Write pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set_pixel(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        let i = (y * self.w + x) * 3;
        self.data[i] = rgb[0];
        self.data[i + 1] = rgb[1];
        self.data[i + 2] = rgb[2];
    }

    /// Encode as a binary PPM (P6) image, viewable with any image tool —
    /// handy for inspecting what the agent's cameras actually see.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.w, self.h).into_bytes();
        out.extend_from_slice(&self.data);
        out
    }
}

/// Inertial measurements for one frame.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct ImuReading {
    /// Longitudinal acceleration (m/s²), noisy.
    pub accel: f32,
    /// Yaw rate (rad/s), noisy.
    pub yaw_rate: f32,
}

/// One time step's bundle of sensor data, posted at the sensor frequency.
#[derive(Clone, Debug, PartialEq)]
pub struct SensorFrame {
    /// Simulation time (s).
    pub t: f64,
    /// Step index since scenario start.
    pub step: u64,
    /// Camera images: `[left, center, right]`.
    pub cameras: Vec<Image>,
    /// GPS fix (world x, y), noisy (f32 like a real receiver payload).
    pub gps: [f32; 2],
    /// IMU readings.
    pub imu: ImuReading,
    /// Speedometer (m/s), noisy.
    pub speed: f32,
    /// Optional LiDAR ranges (m), one per azimuth bin.
    pub lidar: Option<Vec<f32>>,
}

impl SensorFrame {
    /// An empty frame suitable as a reusable buffer for
    /// [`World::sense_into`](crate::World::sense_into); its vectors are
    /// (re)filled in place on every capture.
    pub fn empty() -> Self {
        SensorFrame {
            t: 0.0,
            step: 0,
            cameras: Vec::new(),
            gps: [0.0; 2],
            imu: ImuReading::default(),
            speed: 0.0,
            lidar: None,
        }
    }
}

/// Sensor-suite configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SensorConfig {
    /// Camera image width (px).
    pub width: usize,
    /// Camera image height (px).
    pub height: usize,
    /// Horizontal field of view (degrees).
    pub hfov_deg: f64,
    /// Camera mount height above ground (m).
    pub cam_height: f64,
    /// Yaw offsets of the three cameras (radians): left, center, right.
    pub cam_yaws: [f64; 3],
    /// Std-dev of per-pixel per-channel sensor noise (8-bit LSBs).
    pub pixel_noise: f64,
    /// World-texture amplitude (8-bit LSBs).
    pub texture_amp: f64,
    /// GPS noise std-dev (m).
    pub gps_noise: f64,
    /// Speedometer noise std-dev (m/s).
    pub speed_noise: f64,
    /// IMU noise std-dev (m/s² and rad/s).
    pub imu_noise: f64,
    /// Whether to produce LiDAR scans.
    pub enable_lidar: bool,
    /// Number of LiDAR azimuth bins.
    pub lidar_rays: usize,
    /// Maximum LiDAR range (m).
    pub lidar_range: f64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            width: 64,
            height: 48,
            hfov_deg: 70.0,
            cam_height: 1.5,
            cam_yaws: [0.785, 0.0, -0.785],
            pixel_noise: 1.3,
            texture_amp: 9.0,
            gps_noise: 0.15,
            speed_noise: 0.05,
            imu_noise: 0.02,
            enable_lidar: false,
            lidar_rays: 180,
            lidar_range: 80.0,
        }
    }
}

/// Everything the rasterizer needs to draw one frame.
#[derive(Clone, Debug)]
pub struct RenderScene<'a> {
    /// The route the road follows.
    pub track: &'a Track,
    /// Ego pose (camera platform).
    pub ego: Pose,
    /// Ego arclength along the track (precomputed by the world).
    pub ego_s: f64,
    /// Other vehicles.
    pub npcs: &'a [Npc],
    /// Per-frame noise seed.
    pub frame_seed: u64,
}

/// SplitMix64 — cheap deterministic hash used for texture and pixel noise.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash two words into a signed amplitude in `[-1, 1]`.
#[inline]
fn hash_amp(a: u64, b: u64) -> f64 {
    let h = mix(a ^ mix(b));
    (h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Quantize a channel value to a byte: round half away from zero, clamp to
/// `[0, 255]`.
///
/// Bit-equal to `v.round().clamp(0.0, 255.0) as u8` for every input
/// (including ties, NaN, and infinities) but built from operations LLVM
/// vectorizes, which `f64::round` and the saturating float→int cast are
/// not. Three steps, each exact:
///
/// 1. `r = floor(v + 0.5)` equals `v.round()` for `v ≥ 0` except when the
///    add rounds up across an integer boundary (`v` within one ulp below
///    `k + 0.5`, e.g. `0.49999999999999994`); then `r - 0.5 > v` detects
///    the overshoot and `r - 1` restores it. The probe must not be
///    `r - v > 0.5`: that difference itself rounds down to exactly `0.5`
///    in the overshoot case, while `r - 0.5` is exact for integer-valued
///    `r` below 2⁵² (and above that the off-by-one from its rounding is
///    absorbed by the same comparison). An exact tie keeps `r` — round
///    half *away*. For `v < 0` both forms land ≤ 0 and clamp to 0 either
///    way.
/// 2. `max(0)`/`min(255)` clamp; `NaN.max(0.0)` is `0.0`, matching the
///    `NaN → 0` of the saturating cast.
/// 3. The result is integer-valued in `[0, 255]`, so adding 2⁵² places it
///    exactly in the low mantissa bits and the low byte of the bit pattern
///    *is* the answer.
#[inline]
fn quantize(v: f64) -> u8 {
    let r = (v + 0.5).floor();
    let r = if r - 0.5 > v { r - 1.0 } else { r };
    // Not `clamp`: `NaN.max(0.0)` is 0.0 (step 2 above), `NaN.clamp` is NaN.
    #[allow(clippy::manual_clamp)]
    let r = r.max(0.0).min(255.0);
    ((r + 6_755_399_441_055_744.0).to_bits() & 0xFF) as u8
}

/// Render one camera of the scene.
///
/// Deterministic given the scene (including `frame_seed`); the returned
/// image is the bit-level-diverse, semantically consistent input stream the
/// DiverseAV distributor splits between agents.
pub fn render_camera(cfg: &SensorConfig, scene: &RenderScene<'_>, cam: usize) -> Image {
    let mut img = Image::new(0, 0);
    render_camera_into(cfg, scene, cam, &mut img);
    img
}

/// [`render_camera`] into a caller-owned image, reusing its allocation.
///
/// Produces bit-identical pixels to [`render_camera`]; in steady state
/// (same resolution every frame) it performs no heap allocation, which
/// is what makes the campaign hot path allocation-free under the
/// `SimLoop` frame-buffer pool.
pub fn render_camera_into(
    cfg: &SensorConfig,
    scene: &RenderScene<'_>,
    cam: usize,
    img: &mut Image,
) {
    let w = cfg.width;
    let h = cfg.height;
    img.reset(w, h);
    let fx = (w as f64 / 2.0) / (cfg.hfov_deg.to_radians() / 2.0).tan();
    let fy = fx;
    let cx = w as f64 / 2.0;
    let cy = h as f64 / 2.0;

    let cam_yaw = scene.ego.heading + cfg.cam_yaws[cam];
    let fwd = Vec2::from_heading(cam_yaw);
    let left = fwd.perp();
    let cam_pos = scene.ego.pos;
    let noise_key = scene.frame_seed ^ ((cam as u64) << 56);
    let noise_amp = cfg.pixel_noise * 2.0;

    // --- ground & sky ---
    RENDER_SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        s.hashes.resize(4 * w, 0);
        s.noise.resize(4 * w, 0.0);
        s.vals.resize(3 * w, 0.0);
        let RenderScratch { hashes, noise, vals } = s;
        let (hash_row, noise_row, vals_row) =
            (&mut hashes[..4 * w], &mut noise[..4 * w], &mut vals[..3 * w]);
        for py in 0..h {
            // The noise key `(px * 4 + ch) * 4096 + py` is affine in
            // `k = px * 4 + ch`, so hashing the whole row as one flat strip
            // (the `ch = 3` slot is padding) turns the per-pixel hash
            // chains into a single autovectorizable pass. Two passes —
            // integer hashes, then hash→amplitude conversion — keep each
            // loop body in one vector domain.
            for (k, slot) in hash_row.iter_mut().enumerate() {
                *slot = mix(noise_key ^ mix((k * 4096 + py) as u64));
            }
            for (slot, &hv) in noise_row.iter_mut().zip(hash_row.iter()) {
                *slot = ((hv >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) * noise_amp;
            }
            let row = &mut img.data[py * w * 3..][..w * 3];
            let yf = py as f64 + 0.5;
            if yf <= cy + 0.5 {
                // Sky: vertical gradient, slightly blue-gray.
                let t = yf / cy;
                let base = [120.0 + 50.0 * t, 135.0 + 40.0 * t, 150.0 + 30.0 * t];
                // Stage unquantized channel values flat, then quantize the
                // whole row in one pass the vectorizer can chew through.
                for (px, v3) in vals_row.chunks_exact_mut(3).enumerate() {
                    let n = &noise_row[px * 4..px * 4 + 3];
                    v3[0] = base[0] + n[0];
                    v3[1] = base[1] + n[1];
                    v3[2] = base[2] + n[2];
                }
                for (o, &v) in row.iter_mut().zip(vals_row.iter()) {
                    *o = quantize(v);
                }
                continue;
            }
            // Ground row: view distance from the flat-ground projection.
            let d = cfg.cam_height * fy / (yf - cy);
            // Local road frame at the row's approximate arclength. Using the
            // forward component of the view ray keeps side cameras roughly
            // consistent.
            let row_s = scene.ego_s + d * cfg.cam_yaws[cam].cos();
            let c = scene.track.pos_at(row_s.max(0.0));
            let tdir = scene.track.dir_at(row_s.max(0.0));
            let nrm = tdir.perp();
            // Row invariants: every pixel of the row shares the same view
            // depth, so the forward offset, pixel footprint, and marking
            // half-width hoist out of the pixel loop.
            let row_base = cam_pos + fwd * d;
            let ground_px_size = d / fx; // meters per pixel at this depth
            let mark_halfwidth = (0.09f64).max(ground_px_size * 0.5);
            for (px, v3) in vals_row.chunks_exact_mut(3).enumerate() {
                let l = -((px as f64 + 0.5) - cx) * d / fx;
                let wp = row_base + left * l;
                let rel = wp - c;
                let lat = nrm.dot(rel);
                let along = row_s + tdir.dot(rel);

                let on_road = (-LANE_WIDTH / 2.0 - 0.3..=1.5 * LANE_WIDTH + 0.3).contains(&lat);
                let marking = marking_at(lat, along, mark_halfwidth);
                let base: [f64; 3] = if marking {
                    [205.0, 205.0, 198.0]
                } else if on_road {
                    [56.0, 56.0, 59.0]
                } else {
                    [76.0, 94.0, 52.0]
                };
                // World-anchored texture (0.5 m cells).
                let cellx = (wp.x * 2.0).floor() as i64 as u64;
                let celly = (wp.y * 2.0).floor() as i64 as u64;
                let tex = hash_amp(cellx, celly) * cfg.texture_amp;
                let n = &noise_row[px * 4..px * 4 + 3];
                v3[0] = base[0] + tex + n[0];
                v3[1] = base[1] + tex + n[1];
                v3[2] = base[2] + tex + n[2];
            }
            for (o, &v) in row.iter_mut().zip(vals_row.iter()) {
                *o = quantize(v);
            }
        }
    });

    // --- vehicles, far to near ---
    // Allocation-free draw-order selection: repeatedly pick the deepest
    // undrawn NPC (ties broken by original index), which reproduces the
    // order of a stable descending sort without a scratch vector. Scenes
    // beyond the bitmask width fall back to a sorted index list.
    let n_npcs = scene.npcs.len();
    let depth = |i: usize| {
        let rel = scene.npcs[i].pose(scene.track).pos - cam_pos;
        fwd.dot(rel)
    };
    let draw_npc = |i: usize, img: &mut Image| {
        let npc = &scene.npcs[i];
        let pose = npc.pose(scene.track);
        let rel = pose.pos - cam_pos;
        let f = fwd.dot(rel);
        let l = left.dot(rel);
        if !(1.5..=95.0).contains(&f) {
            return;
        }
        let px_center = cx - fx * l / f;
        let py_bottom = cy + fy * cfg.cam_height / f;
        let width_px = fx * npc.width / f;
        let height_px = fy * 1.45 / f;
        let x0 = (px_center - width_px / 2.0).floor().max(0.0) as usize;
        let x1 = (px_center + width_px / 2.0).ceil().min(w as f64) as usize;
        let y1 = py_bottom.min(h as f64).max(0.0) as usize;
        let y0 = (py_bottom - height_px).floor().max(0.0) as usize;
        if x0 >= x1 || y0 >= y1 {
            return;
        }
        // Vehicle paint: strongly blue signature, shaded by distance and
        // paint variety (the perception kernel keys on blueness).
        let fade = 1.0 / (1.0 + 0.006 * f);
        let shade = npc.shade as f64 * 10.0;
        let base =
            [(38.0 + shade) * fade, (42.0 + shade) * fade, (205.0 + shade).min(235.0) * fade];
        let span_w = (x1 - x0).max(1) as f64;
        let span = x1 - x0;
        // Texture anchored to the vehicle body (4×4 panels) so the pattern
        // shifts with the projected box. The panel coordinates are the only
        // inputs to the texture key, so all 16 hashes hoist out of the
        // pixel loops.
        let mut panel = [[0.0f64; 4]; 4];
        for (u, col) in panel.iter_mut().enumerate() {
            for (v, t) in col.iter_mut().enumerate() {
                *t = hash_amp(0xCAFE ^ (i as u64) << 8, (u as u64) * 16 + v as u64) * 14.0;
            }
        }
        RENDER_SCRATCH.with(|cell| {
            let s = &mut *cell.borrow_mut();
            s.hashes.resize(4 * w, 0);
            s.noise.resize(4 * w, 0.0);
            s.vals.resize(3 * w, 0.0);
            let RenderScratch { hashes, noise, vals } = s;
            for py in y0..y1 {
                let v = ((py as f64 - y0 as f64) / (y1 - y0).max(1) as f64 * 4.0) as usize;
                // Same flat affine noise strip as the background pass
                // (`n = hash * pixel_noise * 2.0` equals `hash *
                // noise_amp`: scaling by 2 commutes with rounding), offset
                // to the box columns, in the same two vector-domain passes.
                let hash_box = &mut hashes[..4 * span];
                let noise_box = &mut noise[..4 * span];
                for (j, slot) in hash_box.iter_mut().enumerate() {
                    *slot = mix(noise_key ^ mix(((x0 * 4 + j) * 4096 + py) as u64));
                }
                for (slot, &hv) in noise_box.iter_mut().zip(hash_box.iter()) {
                    *slot = ((hv >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) * noise_amp;
                }
                let vals_box = &mut vals[..3 * span];
                for (dx, v3) in vals_box.chunks_exact_mut(3).enumerate() {
                    let px = x0 + dx;
                    let u = ((px as f64 - x0 as f64) / span_w * 4.0) as usize;
                    let tex = panel[u][v];
                    let n = &noise_box[dx * 4..dx * 4 + 3];
                    v3[0] = (base[0] + tex) + n[0];
                    v3[1] = (base[1] + tex) + n[1];
                    v3[2] = (base[2] + tex) + n[2];
                }
                let row = &mut img.data[(py * w + x0) * 3..][..span * 3];
                for (o, &vv) in row.iter_mut().zip(vals_box.iter()) {
                    *o = quantize(vv);
                }
            }
        });
    };
    if n_npcs <= 128 {
        let mut drawn: u128 = 0;
        for _ in 0..n_npcs {
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n_npcs {
                if drawn & (1u128 << i) != 0 {
                    continue;
                }
                let d = depth(i);
                if best.is_none_or(|(_, bd)| d > bd) {
                    best = Some((i, d));
                }
            }
            let (i, _) = best.expect("an undrawn NPC remains");
            drawn |= 1u128 << i;
            draw_npc(i, img);
        }
    } else {
        let mut order: Vec<usize> = (0..n_npcs).collect();
        order.sort_by(|&a, &b| depth(b).partial_cmp(&depth(a)).expect("finite depths"));
        for i in order {
            draw_npc(i, img);
        }
    }
}

/// Whether track coordinates `(lat, along)` fall on a lane marking.
fn marking_at(lat: f64, along: f64, halfwidth: f64) -> bool {
    // Right road edge (solid), lane divider (dashed), left road edge (solid).
    let right = -LANE_WIDTH / 2.0;
    let mid = LANE_WIDTH / 2.0;
    let leftb = 1.5 * LANE_WIDTH;
    if (lat - right).abs() < halfwidth || (lat - leftb).abs() < halfwidth {
        return true;
    }
    if (lat - mid).abs() < halfwidth {
        return along.rem_euclid(4.0) < 2.0;
    }
    false
}

/// Ray–segment intersection: returns distance along the ray, if any.
fn ray_segment(o: Vec2, d: Vec2, a: Vec2, b: Vec2) -> Option<f64> {
    let v = b - a;
    let denom = d.cross(v);
    if denom.abs() < 1e-12 {
        return None;
    }
    let ao = a - o;
    let t = ao.cross(v) / denom;
    let u = ao.cross(d) / denom;
    (t >= 0.0 && (0.0..=1.0).contains(&u)).then_some(t)
}

/// Produce a LiDAR scan: one range per azimuth bin, with small noise.
pub fn lidar_scan(cfg: &SensorConfig, scene: &RenderScene<'_>) -> Vec<f32> {
    let mut out = Vec::new();
    lidar_scan_into(cfg, scene, &mut out);
    out
}

/// [`lidar_scan`] into a caller-owned buffer, reusing its allocation.
///
/// NPC footprints are flattened into a per-scan segment list once, so each
/// of the `lidar_rays` casts is a tight pass over precomputed segments
/// instead of re-deriving every footprint per ray.
pub fn lidar_scan_into(cfg: &SensorConfig, scene: &RenderScene<'_>, out: &mut Vec<f32>) {
    let n = cfg.lidar_rays;
    SEGMENTS.with(|cell| {
        let mut segs = cell.borrow_mut();
        segs.clear();
        for npc in scene.npcs {
            let fp = npc.footprint(scene.track);
            let corners = fp.corners();
            for k in 0..4 {
                segs.push((corners[k], corners[(k + 1) % 4]));
            }
        }
        let origin = scene.ego.pos;
        out.clear();
        out.extend((0..n).map(|i| {
            let az = scene.ego.heading + i as f64 / n as f64 * std::f64::consts::TAU;
            let dir = Vec2::from_heading(az);
            let mut r = cfg.lidar_range;
            for &(a, b) in segs.iter() {
                if let Some(t) = ray_segment(origin, dir, a, b) {
                    if t < r {
                        r = t;
                    }
                }
            }
            let noise = hash_amp(scene.frame_seed ^ 0x11DA, i as u64) * 0.03;
            (r + noise) as f32
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::npc::NpcBehavior;

    fn scene_with<'a>(track: &'a Track, npcs: &'a [Npc], seed: u64) -> RenderScene<'a> {
        RenderScene { track, ego: Pose::new(Vec2::ZERO, 0.0), ego_s: 0.0, npcs, frame_seed: seed }
    }

    #[test]
    fn image_pixel_roundtrip() {
        let mut img = Image::new(4, 3);
        img.set_pixel(2, 1, [1, 2, 3]);
        assert_eq!(img.pixel(2, 1), [1, 2, 3]);
        assert_eq!(img.pixel(0, 0), [0, 0, 0]);
        assert_eq!(img.data().len(), 4 * 3 * 3);
    }

    #[test]
    fn ppm_encoding_has_header_and_payload() {
        let img = Image::new(4, 3);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(ppm.len(), 11 + 4 * 3 * 3);
    }

    #[test]
    fn render_is_deterministic() {
        let track = Track::straight(200.0);
        let npcs = [Npc::new(25.0, 0.0, 5.0, NpcBehavior::Cruise)];
        let cfg = SensorConfig::default();
        let a = render_camera(&cfg, &scene_with(&track, &npcs, 7), 1);
        let b = render_camera(&cfg, &scene_with(&track, &npcs, 7), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn frame_seed_changes_pixels() {
        let track = Track::straight(200.0);
        let npcs = [];
        let cfg = SensorConfig::default();
        let a = render_camera(&cfg, &scene_with(&track, &npcs, 1), 1);
        let b = render_camera(&cfg, &scene_with(&track, &npcs, 2), 1);
        assert_ne!(a, b, "per-frame noise must differ between frames");
    }

    #[test]
    fn vehicle_is_visible_and_blue() {
        let track = Track::straight(200.0);
        let npcs = [Npc::new(20.0, 0.0, 5.0, NpcBehavior::Cruise)];
        let cfg = SensorConfig::default();
        let img = render_camera(&cfg, &scene_with(&track, &npcs, 3), 1);
        // Somewhere below the horizon there must be a strongly blue pixel.
        let mut max_blueness = i32::MIN;
        for y in cfg.height / 2..cfg.height {
            for x in 0..cfg.width {
                let [r, g, b] = img.pixel(x, y);
                max_blueness = max_blueness.max(b as i32 - (r as i32 + g as i32) / 2);
            }
        }
        assert!(max_blueness > 60, "vehicle blueness {max_blueness}");
    }

    #[test]
    fn closer_vehicle_has_lower_bottom_row() {
        let track = Track::straight(300.0);
        let cfg = SensorConfig::default();
        let bottom_row = |dist: f64| {
            let npcs = [Npc::new(dist, 0.0, 5.0, NpcBehavior::Cruise)];
            let img = render_camera(&cfg, &scene_with(&track, &npcs, 3), 1);
            (0..cfg.height)
                .rev()
                .find(|&y| {
                    (0..cfg.width).any(|x| {
                        let [r, g, b] = img.pixel(x, y);
                        b as i32 - (r as i32 + g as i32) / 2 > 60
                    })
                })
                .expect("vehicle visible")
        };
        let near = bottom_row(12.0);
        let far = bottom_row(40.0);
        assert!(near > far, "near bottom row {near} vs far {far}");
    }

    #[test]
    fn lane_markings_appear_in_bottom_rows() {
        let track = Track::straight(200.0);
        let cfg = SensorConfig::default();
        let img = render_camera(&cfg, &scene_with(&track, &[], 9), 1);
        // Bright (whitish) pixels in the bottom third.
        let mut found = false;
        for y in cfg.height * 2 / 3..cfg.height {
            for x in 0..cfg.width {
                let [r, g, b] = img.pixel(x, y);
                if r > 160 && g > 160 && b > 150 {
                    found = true;
                }
            }
        }
        assert!(found, "no lane markings rendered");
    }

    #[test]
    fn sky_above_horizon_is_not_vehicle_blue() {
        let track = Track::straight(200.0);
        let cfg = SensorConfig::default();
        let img = render_camera(&cfg, &scene_with(&track, &[], 9), 1);
        for y in 0..cfg.height / 2 {
            for x in 0..cfg.width {
                let [r, g, b] = img.pixel(x, y);
                let blueness = b as i32 - (r as i32 + g as i32) / 2;
                assert!(blueness < 45, "sky pixel ({x},{y}) too blue: {blueness}");
            }
        }
    }

    #[test]
    fn marking_pattern_dashes() {
        // Divider dashes: on for along ∈ [0,2), off for [2,4).
        assert!(marking_at(LANE_WIDTH / 2.0, 1.0, 0.1));
        assert!(!marking_at(LANE_WIDTH / 2.0, 3.0, 0.1));
        // Edges solid regardless of along.
        assert!(marking_at(-LANE_WIDTH / 2.0, 3.0, 0.1));
        assert!(marking_at(1.5 * LANE_WIDTH, 7.7, 0.1));
        // Lane centers are unmarked.
        assert!(!marking_at(0.0, 1.0, 0.1));
    }

    #[test]
    fn lidar_sees_vehicle_ahead() {
        let track = Track::straight(200.0);
        let npcs = [Npc::new(20.0, 0.0, 0.0, NpcBehavior::Cruise)];
        let cfg = SensorConfig { enable_lidar: true, ..Default::default() };
        let scan = lidar_scan(&cfg, &scene_with(&track, &npcs, 5));
        assert_eq!(scan.len(), cfg.lidar_rays);
        // Ray 0 points along +x (ego heading): hits the NPC rear at ~17.8 m.
        assert!(
            (scan[0] - 17.8).abs() < 0.5,
            "forward LiDAR range {} should be near the NPC rear",
            scan[0]
        );
        // A sideways ray sees max range.
        let side = scan[cfg.lidar_rays / 4];
        assert!(side > cfg.lidar_range as f32 - 1.0);
    }

    #[test]
    fn ray_segment_math() {
        // Ray along +x hits the vertical segment x=5, y ∈ [-1, 1] at t=5.
        let t =
            ray_segment(Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(5.0, -1.0), Vec2::new(5.0, 1.0));
        assert!((t.expect("hit") - 5.0).abs() < 1e-9);
        // Misses a segment off to the side.
        let miss =
            ray_segment(Vec2::ZERO, Vec2::new(1.0, 0.0), Vec2::new(5.0, 2.0), Vec2::new(5.0, 3.0));
        assert_eq!(miss, None);
        // Behind the origin → no hit.
        let behind = ray_segment(
            Vec2::ZERO,
            Vec2::new(1.0, 0.0),
            Vec2::new(-5.0, -1.0),
            Vec2::new(-5.0, 1.0),
        );
        assert_eq!(behind, None);
    }

    #[test]
    fn hash_amp_is_bounded_and_stable() {
        for i in 0..1000u64 {
            let v = hash_amp(i, i * 31);
            assert!((-1.0..=1.0).contains(&v));
            assert_eq!(v, hash_amp(i, i * 31));
        }
    }

    /// The branch-free quantizer must agree bit-for-bit with the naive
    /// `round → clamp → saturating cast` definition everywhere: a dense
    /// sweep of the clamp range, hash-derived values like the renderer
    /// feeds it, exact `.5` ties on both sides of zero, near-tie ulp
    /// neighbours (the case its overshoot correction exists for), and the
    /// non-finite edge cases.
    #[test]
    fn quantize_matches_naive_rounding() {
        let naive = |v: f64| v.round().clamp(0.0, 255.0) as u8;
        let mut x = -5.0f64;
        while x < 261.0 {
            assert_eq!(quantize(x), naive(x), "sweep at {x}");
            x += 0.000_37;
        }
        for k in 0..100_000u64 {
            let v = hash_amp(99, k) * 300.0;
            assert_eq!(quantize(v), naive(v), "hash value {v}");
            let tie = (k % 257) as f64 + 0.5;
            assert_eq!(quantize(tie), naive(tie), "tie at {tie}");
            assert_eq!(quantize(-tie), naive(-tie), "tie at {}", -tie);
            let below = f64::from_bits(tie.to_bits() - 1);
            let above = f64::from_bits(tie.to_bits() + 1);
            assert_eq!(quantize(below), naive(below), "below tie {below:?}");
            assert_eq!(quantize(above), naive(above), "above tie {above:?}");
        }
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 0.0] {
            assert_eq!(quantize(v), naive(v), "edge case {v:?}");
        }
    }
}
