//! # diverseav-simworld
//!
//! A deterministic 2-D driving-world simulator standing in for CARLA in the
//! DiverseAV reproduction (Jha et al., DSN 2022).
//!
//! The simulator provides everything the paper's evaluation needs from its
//! world: a closed control loop (faulty actuation changes the future world
//! and hence future sensor data), the three NHTSA-style safety-critical
//! scenarios and three long training routes of §IV-C, 40 Hz synchronous
//! sensor posting (camera ×3, GPS, IMU, speedometer, optional LiDAR), and
//! safety monitors (collision detection, closest-vehicle-in-path, traffic
//! rules, trajectory recording).
//!
//! ## Example
//!
//! ```
//! use diverseav_simworld::{lead_slowdown, Controls, SensorConfig, World};
//!
//! let mut world = World::new(lead_slowdown(), SensorConfig::default(), 42);
//! let frame = world.sense();
//! assert_eq!(frame.cameras.len(), 3);
//! world.step(Controls::clamped(0.5, 0.0, 0.0));
//! assert!(world.time() > 0.0);
//! ```

pub mod geometry;
pub mod npc;
pub mod scenario;
pub mod sensors;
pub mod track;
pub mod vehicle;
pub mod world;

pub use geometry::{Obb, Pose, Vec2};
pub use npc::{idm_accel, GapAhead, IdmParams, Npc, NpcBehavior};
pub use scenario::{
    front_accident, ghost_cut_in, lead_slowdown, long_route, Scenario, ScenarioKind,
};
pub use sensors::{
    lidar_scan, lidar_scan_into, render_camera, render_camera_into, Image, ImuReading, RenderScene,
    SensorConfig, SensorFrame,
};
pub use track::{
    generate_lights, generate_long_route, LightPhase, Track, TrafficLight, LANE_WIDTH,
};
pub use vehicle::{Controls, Vehicle, VehicleParams, VehicleState};
pub use world::{RouteHint, TrajPoint, World, WorldStatus, TICK_HZ};
