//! Driving scenarios: the three NHTSA-style safety-critical test scenarios
//! of the paper's §IV-C1 and the three long training routes of §IV-C2.

use crate::npc::{IdmParams, Npc, NpcBehavior};
use crate::track::{generate_lights, generate_long_route, Track, TrafficLight, LANE_WIDTH};

/// Which scenario family a [`Scenario`] belongs to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Lead vehicle performs emergency braking (§IV-C1, Fig 4 left).
    LeadSlowdown,
    /// NPC cuts in from the adjacent lane with a small margin (Fig 4 mid).
    GhostCutIn,
    /// Two NPCs collide ahead of the ego vehicle (Fig 4 right).
    FrontAccident,
    /// Long everyday-driving training route (Route02/15/42 analogue).
    LongRoute(u8),
}

impl ScenarioKind {
    /// The paper's abbreviation for this scenario (LSD / GC / FA / Rxx).
    ///
    /// Interned: campaign labels and journal records embed this on the
    /// per-run path, so it must not allocate. Only routes 0–2 exist (the
    /// Route02/15/42 analogues; [`long_route`] folds higher ids onto
    /// route 2's parameters).
    pub fn abbrev(self) -> &'static str {
        match self {
            ScenarioKind::LeadSlowdown => "LSD",
            ScenarioKind::GhostCutIn => "GC",
            ScenarioKind::FrontAccident => "FA",
            ScenarioKind::LongRoute(0) => "R00",
            ScenarioKind::LongRoute(1) => "R01",
            ScenarioKind::LongRoute(_) => "R02",
        }
    }

    /// All three safety-critical (test) scenario kinds.
    pub fn safety_critical() -> [ScenarioKind; 3] {
        [ScenarioKind::LeadSlowdown, ScenarioKind::GhostCutIn, ScenarioKind::FrontAccident]
    }
}

/// A complete scenario description: track, actors, lights, and timing.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable name — an interned `&'static str` so per-run
    /// results and journal records carry a copy-free scenario ID.
    pub name: &'static str,
    /// Scenario family.
    pub kind: ScenarioKind,
    /// Scenario duration (s).
    pub duration: f64,
    /// Ego spawn arclength (m).
    pub ego_start_s: f64,
    /// Ego spawn speed (m/s).
    pub ego_start_speed: f64,
    /// Ego cruise speed target (m/s) fed to the high-level planner.
    pub cruise_speed: f64,
    /// The route.
    pub track: Track,
    /// Traffic lights along the route.
    pub lights: Vec<TrafficLight>,
    /// Scenario actors and background traffic.
    pub npcs: Vec<Npc>,
}

impl Scenario {
    /// Build a scenario of the given kind with default paper-like timing.
    pub fn of_kind(kind: ScenarioKind) -> Scenario {
        match kind {
            ScenarioKind::LeadSlowdown => lead_slowdown(),
            ScenarioKind::GhostCutIn => ghost_cut_in(),
            ScenarioKind::FrontAccident => front_accident(),
            ScenarioKind::LongRoute(i) => long_route(i, 200.0),
        }
    }
}

/// *Lead Slowdown*: ego follows an NPC at 25 m; the NPC emergency-brakes.
pub fn lead_slowdown() -> Scenario {
    let track = Track::straight(500.0);
    let ego_start_s = 10.0;
    let speed = 8.0;
    let npcs = vec![Npc::new(
        ego_start_s + 25.0,
        0.0,
        speed,
        NpcBehavior::LeadSlowdown { brake_at: 12.0, decel: 6.0 },
    )
    .with_shade(0)];
    Scenario {
        name: "lead-slowdown",
        kind: ScenarioKind::LeadSlowdown,
        duration: 30.0,
        ego_start_s,
        ego_start_speed: speed,
        cruise_speed: speed,
        track,
        lights: Vec::new(),
        npcs,
    }
}

/// *Ghost Cut-in*: an NPC overtakes in the left lane and cuts in with a
/// small longitudinal margin.
pub fn ghost_cut_in() -> Scenario {
    let track = Track::straight(500.0);
    let ego_start_s = 10.0;
    let speed = 8.0;
    // NPC starts 12 m behind the ego in the adjacent lane, 3.0 m/s faster;
    // it cuts in once ~8 m ahead (≈ 6.7 s in) and settles slower than ego.
    let npcs = vec![Npc::new(
        ego_start_s - 12.0,
        LANE_WIDTH,
        speed + 3.0,
        NpcBehavior::CutIn { cut_at: 7.0, duration: 1.4, target_lateral: 0.0, post_speed: 4.2 },
    )
    .with_shade(2)];
    Scenario {
        name: "ghost-cut-in",
        kind: ScenarioKind::GhostCutIn,
        duration: 30.0,
        ego_start_s,
        ego_start_speed: speed,
        cruise_speed: speed,
        track,
        lights: Vec::new(),
        npcs,
    }
}

/// *Front Accident*: a merging NPC crashes into the lead NPC; both stop
/// abruptly in the ego's path.
pub fn front_accident() -> Scenario {
    let track = Track::straight(500.0);
    let ego_start_s = 10.0;
    let speed = 8.0;
    let crash_at = 9.0;
    let npcs = vec![
        // The struck lead vehicle, 35 m ahead in the ego lane.
        Npc::new(ego_start_s + 35.0, 0.0, speed, NpcBehavior::MergeVictim { crash_at })
            .with_shade(4),
        // The striking merger, gaining in the adjacent lane.
        Npc::new(
            ego_start_s + 18.0,
            LANE_WIDTH,
            speed + 2.2,
            NpcBehavior::MergeCollider { crash_at },
        )
        .with_shade(1),
    ];
    Scenario {
        name: "front-accident",
        kind: ScenarioKind::FrontAccident,
        duration: 30.0,
        ego_start_s,
        ego_start_speed: speed,
        cruise_speed: speed,
        track,
        lights: Vec::new(),
        npcs,
    }
}

/// A long everyday-driving training route with turns, traffic lights, and
/// deterministic background traffic (the Route02/15/42 analogues).
///
/// `duration` bounds the scenario time; the route is generated long enough
/// to fill it at cruise speed.
pub fn long_route(route_id: u8, duration: f64) -> Scenario {
    let cruise = 8.0;
    let length = (duration * cruise * 1.3).max(400.0);
    let seed = match route_id {
        0 => 0x02,
        1 => 0x15,
        _ => 0x42,
    };
    let track = generate_long_route(seed, length);
    let lights = generate_lights(&track, 260.0);
    // Deterministic background traffic: IDM vehicles ahead in the ego lane
    // and cruisers in the passing lane, spacing and speeds keyed by the
    // route seed (the paper's "pseudo-random background traffic ... with a
    // fixed random seed").
    let mut npcs = Vec::new();
    // A stop-and-go leader close ahead: everyday dense-traffic braking
    // events (the paper's routes include vehicle following in dense
    // traffic), which exercise the hard-braking vehicle states the error
    // detector must learn thresholds for.
    // Severity varies per route so the learned thresholds cover a spread
    // of braking intensities (the paper's three towns differ likewise).
    let (gap, decel, stop_time) = match route_id {
        0 => (26.0, 6.5, 6.0),
        1 => (32.0, 6.0, 5.0),
        _ => (40.0, 5.0, 7.0),
    };
    npcs.push(
        Npc::new(
            5.0 + gap,
            0.0,
            cruise,
            NpcBehavior::StopAndGo { period: 24.0, stop_time, decel, cruise },
        )
        .with_shade(3),
    );
    // An everyday cut-in maneuver early in the route (lane changing is
    // part of the paper's long-scenario task mix): the NPC overtakes in
    // the passing lane and merges a short distance ahead of the ego.
    // Cut-in aggressiveness also varies per route.
    let (cut_duration, post_speed) = match route_id {
        0 => (1.4, 4.0),
        1 => (1.6, 5.2),
        _ => (2.0, 6.5),
    };
    npcs.push(
        Npc::new(
            0.0,
            LANE_WIDTH,
            cruise + 2.0,
            NpcBehavior::CutIn {
                cut_at: 7.5,
                duration: cut_duration,
                target_lateral: 0.0,
                post_speed,
            },
        )
        .with_shade(1),
    );
    let mut s = 170.0;
    let mut k = seed;
    while s < track.length() - 60.0 {
        k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let jitter = (k >> 33) % 40;
        let desired = 5.5 + ((k >> 20) % 30) as f64 / 10.0;
        npcs.push(
            Npc::new(
                s + jitter as f64,
                0.0,
                desired.min(7.5),
                NpcBehavior::Idm(IdmParams { desired_speed: desired, ..Default::default() }),
            )
            .with_shade((k % 5) as u8),
        );
        s += 120.0 + jitter as f64 * 2.0;
        // Occasional passing-lane cruiser.
        if k % 3 == 0 && s < track.length() - 80.0 {
            npcs.push(
                Npc::new(s - 40.0, LANE_WIDTH, 6.5 + (k % 4) as f64 * 0.5, NpcBehavior::Cruise)
                    .with_shade(((k >> 8) % 5) as u8),
            );
        }
    }
    // Interned names: only routes 0–2 exist (higher ids already fold onto
    // route 2's seed and traffic parameters above).
    let name = match route_id {
        0 => "long-route-0",
        1 => "long-route-1",
        _ => "long-route-2",
    };
    Scenario {
        name,
        kind: ScenarioKind::LongRoute(route_id),
        duration,
        ego_start_s: 5.0,
        ego_start_speed: 6.0,
        cruise_speed: cruise,
        track,
        lights,
        npcs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_scenarios_have_expected_actors() {
        assert_eq!(lead_slowdown().npcs.len(), 1);
        assert_eq!(ghost_cut_in().npcs.len(), 1);
        assert_eq!(front_accident().npcs.len(), 2);
    }

    #[test]
    fn lead_vehicle_starts_25m_ahead() {
        let s = lead_slowdown();
        assert!((s.npcs[0].s - s.ego_start_s - 25.0).abs() < 1e-9);
        assert_eq!(s.npcs[0].lateral, 0.0);
    }

    #[test]
    fn cut_in_actor_starts_in_adjacent_lane() {
        let s = ghost_cut_in();
        assert_eq!(s.npcs[0].lateral, LANE_WIDTH);
        assert!(s.npcs[0].speed > s.ego_start_speed);
    }

    #[test]
    fn front_accident_actors_in_expected_lanes() {
        let s = front_accident();
        assert_eq!(s.npcs[0].lateral, 0.0, "victim in ego lane");
        assert_eq!(s.npcs[1].lateral, LANE_WIDTH, "collider in passing lane");
    }

    #[test]
    fn long_routes_are_distinct_and_deterministic() {
        let a = long_route(0, 120.0);
        let b = long_route(0, 120.0);
        let c = long_route(1, 120.0);
        assert_eq!(a.track, b.track);
        assert_eq!(a.npcs, b.npcs);
        assert_ne!(a.track, c.track);
        assert!(!a.npcs.is_empty(), "background traffic exists");
        assert!(!a.lights.is_empty() || a.track.length() < 300.0);
    }

    #[test]
    fn long_route_duration_scales_length() {
        let short = long_route(2, 60.0);
        let long = long_route(2, 600.0);
        assert!(long.track.length() > short.track.length());
    }

    #[test]
    fn of_kind_dispatch() {
        for kind in ScenarioKind::safety_critical() {
            let s = Scenario::of_kind(kind);
            assert_eq!(s.kind, kind);
            assert!(s.duration >= 25.0);
        }
        let r = Scenario::of_kind(ScenarioKind::LongRoute(1));
        assert_eq!(r.kind, ScenarioKind::LongRoute(1));
    }

    #[test]
    fn abbrevs_match_paper() {
        assert_eq!(ScenarioKind::LeadSlowdown.abbrev(), "LSD");
        assert_eq!(ScenarioKind::GhostCutIn.abbrev(), "GC");
        assert_eq!(ScenarioKind::FrontAccident.abbrev(), "FA");
        assert_eq!(ScenarioKind::LongRoute(2).abbrev(), "R02");
    }
}
