//! Planar geometry primitives: vectors, poses, and oriented boxes.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A 2-D vector / point in world coordinates (meters).
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct Vec2 {
    /// East coordinate (m).
    pub x: f64,
    /// North coordinate (m).
    pub y: f64,
}

impl Vec2 {
    /// Construct from components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec2) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// 2-D cross product (z component).
    #[inline]
    pub fn cross(self, o: Vec2) -> f64 {
        self.x * o.y - self.y * o.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Vec2) -> f64 {
        (self - o).norm()
    }

    /// Unit vector in the same direction.
    ///
    /// Returns the zero vector if the norm is (near) zero.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n < 1e-12 {
            Vec2::ZERO
        } else {
            Vec2::new(self.x / n, self.y / n)
        }
    }

    /// Rotate counter-clockwise by `angle` radians.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Perpendicular vector (rotated +90°).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Unit vector at heading `angle` (0 = +x, counter-clockwise).
    pub fn from_heading(angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c, s)
    }

    /// Linear interpolation: `self + (o - self) * t`.
    pub fn lerp(self, o: Vec2, t: f64) -> Vec2 {
        self + (o - self) * t
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, o: Vec2) {
        self.x += o.x;
        self.y += o.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// A position plus heading.
#[derive(Copy, Clone, Debug, PartialEq, Default)]
pub struct Pose {
    /// World position (m).
    pub pos: Vec2,
    /// Heading in radians (0 = +x, counter-clockwise).
    pub heading: f64,
}

impl Pose {
    /// Construct a pose.
    pub fn new(pos: Vec2, heading: f64) -> Self {
        Pose { pos, heading }
    }

    /// Transform a point from this pose's local frame (x forward, y left)
    /// to world coordinates.
    pub fn local_to_world(&self, local: Vec2) -> Vec2 {
        self.pos + local.rotated(self.heading)
    }

    /// Transform a world point into this pose's local frame.
    pub fn world_to_local(&self, world: Vec2) -> Vec2 {
        (world - self.pos).rotated(-self.heading)
    }
}

/// An oriented bounding box (vehicle footprint).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Obb {
    /// Center pose.
    pub pose: Pose,
    /// Half-length along the heading axis (m).
    pub half_len: f64,
    /// Half-width across the heading axis (m).
    pub half_wid: f64,
}

impl Obb {
    /// Construct from a center pose and full dimensions.
    pub fn new(pose: Pose, length: f64, width: f64) -> Self {
        Obb { pose, half_len: length / 2.0, half_wid: width / 2.0 }
    }

    /// The four corners in world coordinates.
    pub fn corners(&self) -> [Vec2; 4] {
        let l = self.half_len;
        let w = self.half_wid;
        [
            self.pose.local_to_world(Vec2::new(l, w)),
            self.pose.local_to_world(Vec2::new(l, -w)),
            self.pose.local_to_world(Vec2::new(-l, -w)),
            self.pose.local_to_world(Vec2::new(-l, w)),
        ]
    }

    /// Separating-axis overlap test against another box.
    pub fn intersects(&self, other: &Obb) -> bool {
        let a = self.corners();
        let b = other.corners();
        let axes = [
            Vec2::from_heading(self.pose.heading),
            Vec2::from_heading(self.pose.heading).perp(),
            Vec2::from_heading(other.pose.heading),
            Vec2::from_heading(other.pose.heading).perp(),
        ];
        for axis in axes {
            let (amin, amax) = project(&a, axis);
            let (bmin, bmax) = project(&b, axis);
            if amax < bmin || bmax < amin {
                return false;
            }
        }
        true
    }
}

fn project(pts: &[Vec2; 4], axis: Vec2) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for p in pts {
        let d = p.dot(axis);
        min = min.min(d);
        max = max.max(d);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn vector_algebra() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn norm_and_dist() {
        assert!((Vec2::new(3.0, 4.0).norm() - 5.0).abs() < EPS);
        assert!((Vec2::new(1.0, 1.0).dist(Vec2::new(4.0, 5.0)) - 5.0).abs() < EPS);
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let u = Vec2::new(0.0, 5.0).normalized();
        assert!((u.y - 1.0).abs() < EPS);
    }

    #[test]
    fn rotation_quarter_turn() {
        let r = Vec2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!(r.x.abs() < EPS && (r.y - 1.0).abs() < EPS);
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn heading_unit_vectors() {
        let east = Vec2::from_heading(0.0);
        assert!((east.x - 1.0).abs() < EPS);
        let north = Vec2::from_heading(std::f64::consts::FRAC_PI_2);
        assert!((north.y - 1.0).abs() < EPS);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }

    #[test]
    fn pose_roundtrip() {
        let pose = Pose::new(Vec2::new(5.0, -2.0), 0.7);
        let local = Vec2::new(3.0, 1.0);
        let back = pose.world_to_local(pose.local_to_world(local));
        assert!((back - local).norm() < EPS);
    }

    #[test]
    fn obb_overlap_and_separation() {
        let a = Obb::new(Pose::new(Vec2::ZERO, 0.0), 4.0, 2.0);
        let b = Obb::new(Pose::new(Vec2::new(3.0, 0.0), 0.0), 4.0, 2.0);
        assert!(a.intersects(&b), "overlapping boxes");
        let c = Obb::new(Pose::new(Vec2::new(10.0, 0.0), 0.0), 4.0, 2.0);
        assert!(!a.intersects(&c), "distant boxes");
    }

    #[test]
    fn obb_rotated_near_miss() {
        let a = Obb::new(Pose::new(Vec2::ZERO, 0.0), 4.0, 2.0);
        // Rotated box diagonally adjacent: centers 3.1m apart on a diagonal.
        let d = Obb::new(Pose::new(Vec2::new(2.6, 2.2), std::f64::consts::FRAC_PI_4), 4.0, 2.0);
        // Sanity: the SAT test must be symmetric.
        assert_eq!(a.intersects(&d), d.intersects(&a));
    }

    #[test]
    fn obb_corners_are_centered() {
        let b = Obb::new(Pose::new(Vec2::new(1.0, 1.0), 0.3), 4.0, 2.0);
        let c = b.corners();
        let centroid = (c[0] + c[1] + c[2] + c[3]) * 0.25;
        assert!(centroid.dist(Vec2::new(1.0, 1.0)) < EPS);
    }

    #[test]
    fn display_nonempty() {
        assert!(!Vec2::new(1.0, 2.0).to_string().is_empty());
    }
}
